package learn

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"qres/internal/obs"
)

// LAL implements Learning Active Learning (Konyushkova et al. [59], the
// method the paper adopts in Section 4 for "estimating uncertainty
// reduction"): a regressor trained offline on synthetic learning states
// that predicts, for a candidate probe in the current state of the
// classifier, the expected reduction in generalization error the probe's
// answer would yield. The paper: "LAL uses a regressor that is trained on
// an annotated dataset (which does not need to come from the domain of
// interest). The regressor is transferred to predict the error reduction
// for an instance in a specific learning state."
//
// This is the dataset-independent LAL variant: the training tasks are
// synthetic categorical classification problems generated here, so the
// trained LAL transfers to any Learner state.
type LAL struct {
	reg *RegForest
}

// LALConfig controls offline LAL training.
type LALConfig struct {
	// Tasks is the number of synthetic classification tasks to simulate.
	Tasks int
	// CandidatesPerState is how many candidate points are scored (and
	// labeled with their true error reduction) per learning state.
	CandidatesPerState int
	// Seed makes training deterministic.
	Seed int64
	// Obs, when non-nil, receives a lal_train span for the offline
	// simulation-and-fit pass.
	Obs *obs.Obs
}

// DefaultLALConfig returns a configuration that trains in well under a
// second while producing a usable regressor.
func DefaultLALConfig(seed int64) LALConfig {
	return LALConfig{Tasks: 30, CandidatesPerState: 6, Seed: seed}
}

// numStateFeatures is the width of the learning-state feature vector.
const numStateFeatures = 6

// stateFeatures builds the LAL learning-state representation of candidate
// x under classifier f: the hand-designed features of the LAL paper
// adapted to random forests — predicted probability, vote variance,
// distance from the decision boundary, (log) training-set size, class
// balance of the training set, and ensemble disagreement with the hard
// prediction.
func stateFeatures(f *Forest, trainSize int, posFrac float64, x []int32) []float64 {
	mean, variance := f.VoteStats(x)
	hard := 0.0
	if f.ProbTrue(x) >= 0.5 {
		hard = 1.0
	}
	return []float64{
		mean,
		variance,
		math.Abs(mean - 0.5),
		math.Log1p(float64(trainSize)),
		posFrac,
		math.Abs(mean - hard),
	}
}

// TrainLAL trains the transfer regressor by Monte-Carlo simulation over
// synthetic tasks: for random learning states (task, training subset) and
// random candidates, the true error reduction from acquiring the candidate
// label is measured on a held-out set, and a regression forest is fit on
// (state features → error reduction).
func TrainLAL(cfg LALConfig) *LAL {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 30
	}
	if cfg.CandidatesPerState <= 0 {
		cfg.CandidatesPerState = 6
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := &RegDataset{}

	for task := 0; task < cfg.Tasks; task++ {
		pool, test := syntheticTask(rng)
		// A ladder of training-set sizes within the active-learning
		// regime (small sets, where probe choice matters most).
		for _, n := range []int{10, 20, 40, 80} {
			if n >= pool.Len() {
				break
			}
			train := &Dataset{}
			perm := rng.Perm(pool.Len())
			for _, i := range perm[:n] {
				train.Add(pool.X[i], pool.Y[i])
			}
			forestCfg := ForestConfig{Trees: 15, Seed: rng.Int63()}
			f := FitForest(train, forestCfg)
			baseErr := 1 - f.Accuracy(test)
			posFrac := train.PositiveFraction()

			for c := 0; c < cfg.CandidatesPerState; c++ {
				ci := perm[n+rng.Intn(pool.Len()-n)]
				feats := stateFeatures(f, train.Len(), posFrac, pool.X[ci])

				extended := &Dataset{}
				extended.X = append(append([][]int32{}, train.X...), pool.X[ci])
				extended.Y = append(append([]bool{}, train.Y...), pool.Y[ci])
				f2 := FitForest(extended, ForestConfig{Trees: 15, Seed: forestCfg.Seed})
				gain := baseErr - (1 - f2.Accuracy(test))
				sample.Add(feats, gain)
			}
		}
	}
	l := &LAL{reg: FitRegForest(sample, RegForestConfig{
		Trees: 40, MaxDepth: 8, MinLeaf: 4, Seed: cfg.Seed + 1,
	})}
	cfg.Obs.Emit(obs.StageLALTrain, -1, start, time.Since(start),
		obs.Int("tasks", cfg.Tasks), obs.Int("states", sample.Len()))
	return l
}

// syntheticTask generates one random categorical binary-classification
// task: feature vectors with per-feature random cardinalities, labeled by
// a hidden noisy rule over a subset of features, split into a training
// pool and a test set.
func syntheticTask(rng *rand.Rand) (pool, test *Dataset) {
	nf := 3 + rng.Intn(4)      // 3..6 features
	cards := make([]int32, nf) // 2..8 values per feature
	for i := range cards {
		cards[i] = 2 + int32(rng.Intn(7))
	}
	// Hidden rule: y = (x[f0] in S0) xor-noise, with S0 a random half of
	// the codes of a random feature, plus a second feature's influence.
	f0 := rng.Intn(nf)
	f1 := rng.Intn(nf)
	in0 := make(map[int32]bool)
	for c := int32(0); c < cards[f0]; c++ {
		if rng.Intn(2) == 0 {
			in0[c] = true
		}
	}
	noise := 0.05 + 0.1*rng.Float64()

	gen := func(n int) *Dataset {
		d := &Dataset{}
		for i := 0; i < n; i++ {
			x := make([]int32, nf)
			for f := range x {
				x[f] = int32(rng.Intn(int(cards[f])))
			}
			y := in0[x[f0]]
			if x[f1]%2 == 0 {
				y = !y
			}
			if rng.Float64() < noise {
				y = !y
			}
			d.Add(x, y)
		}
		return d
	}
	return gen(160), gen(120)
}

// Score predicts the expected error reduction of probing candidate x given
// the current classifier f trained on trainSize examples with the given
// positive fraction. Scores are clamped to be non-negative, so they can be
// combined multiplicatively with utilities (Section 6's u·(v+1)).
func (l *LAL) Score(f *Forest, trainSize int, posFrac float64, x []int32) float64 {
	if l == nil || l.reg == nil {
		return 0
	}
	v := l.reg.Predict(stateFeatures(f, trainSize, posFrac, x))
	if v < 0 {
		return 0
	}
	return v
}

var (
	sharedLALOnce sync.Once
	sharedLAL     *LAL
)

// SharedLAL returns a process-wide LAL regressor trained once with a fixed
// seed. Resolution sessions default to it so that constructing a session
// does not pay LAL training time repeatedly.
func SharedLAL() *LAL {
	sharedLALOnce.Do(func() {
		sharedLAL = TrainLAL(DefaultLALConfig(20230601))
	})
	return sharedLAL
}

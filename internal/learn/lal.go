package learn

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"qres/internal/obs"
)

// LAL implements Learning Active Learning (Konyushkova et al. [59], the
// method the paper adopts in Section 4 for "estimating uncertainty
// reduction"): a regressor trained offline on synthetic learning states
// that predicts, for a candidate probe in the current state of the
// classifier, the expected reduction in generalization error the probe's
// answer would yield. The paper: "LAL uses a regressor that is trained on
// an annotated dataset (which does not need to come from the domain of
// interest). The regressor is transferred to predict the error reduction
// for an instance in a specific learning state."
//
// This is the dataset-independent LAL variant: the training tasks are
// synthetic categorical classification problems generated here, so the
// trained LAL transfers to any Learner state.
type LAL struct {
	reg *RegForest
}

// LALConfig controls offline LAL training.
type LALConfig struct {
	// Tasks is the number of synthetic classification tasks to simulate.
	Tasks int
	// CandidatesPerState is how many candidate points are scored (and
	// labeled with their true error reduction) per learning state.
	CandidatesPerState int
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds task-level parallelism of the offline simulation: 0
	// defaults to one worker per CPU, 1 forces serial. The trained
	// regressor is bit-identical for every value — each synthetic task
	// consumes its own (Seed, task)-derived RNG stream and its samples
	// merge in task order.
	Workers int
	// Obs, when non-nil, receives a lal_train span for the offline
	// simulation-and-fit pass.
	Obs *obs.Obs
}

// DefaultLALConfig returns a configuration that trains in well under a
// second while producing a usable regressor.
func DefaultLALConfig(seed int64) LALConfig {
	return LALConfig{Tasks: 30, CandidatesPerState: 6, Seed: seed}
}

// numStateFeatures is the width of the learning-state feature vector.
const numStateFeatures = 6

// stateFeatures builds the LAL learning-state representation of candidate
// x under classifier f: the hand-designed features of the LAL paper
// adapted to random forests — predicted probability, vote variance,
// distance from the decision boundary, (log) training-set size, class
// balance of the training set, and ensemble disagreement with the hard
// prediction.
func stateFeatures(f *Forest, trainSize int, posFrac float64, x []int32) []float64 {
	return stateFeaturesFrom(make([]float64, numStateFeatures), trainSize, posFrac,
		voteStatsOf(f, x))
}

// voteStats bundles one candidate's forest statistics.
type voteStats struct{ mean, variance, prob float64 }

func voteStatsOf(f *Forest, x []int32) voteStats {
	mean, variance := f.VoteStats(x)
	return voteStats{mean: mean, variance: variance, prob: f.ProbTrue(x)}
}

// stateFeaturesFrom fills dst with the learning-state features derived
// from precomputed vote statistics, so batch scoring reuses one buffer
// for every candidate.
func stateFeaturesFrom(dst []float64, trainSize int, posFrac float64, vs voteStats) []float64 {
	hard := 0.0
	if vs.prob >= 0.5 {
		hard = 1.0
	}
	dst[0] = vs.mean
	dst[1] = vs.variance
	dst[2] = math.Abs(vs.mean - 0.5)
	dst[3] = math.Log1p(float64(trainSize))
	dst[4] = posFrac
	dst[5] = math.Abs(vs.mean - hard)
	return dst
}

// lalLadder is the ladder of training-set sizes within the active-learning
// regime (small sets, where probe choice matters most).
var lalLadder = []int{10, 20, 40, 80}

// TrainLAL trains the transfer regressor by Monte-Carlo simulation over
// synthetic tasks: for random learning states (task, training subset) and
// random candidates, the true error reduction from acquiring the candidate
// label is measured on a held-out set, and a regression forest is fit on
// (state features → error reduction). Tasks simulate in parallel across
// cfg.Workers, each from its own deterministic RNG stream; per-task
// samples merge in task order, so the result is identical for any worker
// count.
func TrainLAL(cfg LALConfig) *LAL {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 30
	}
	if cfg.CandidatesPerState <= 0 {
		cfg.CandidatesPerState = 6
	}
	start := time.Now()

	perTask := make([]*RegDataset, cfg.Tasks)
	runTask := func(task int) {
		rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, task)))
		local := &RegDataset{}
		pool, test := syntheticTask(rng)
		for _, n := range lalLadder {
			if n >= pool.Len() {
				break
			}
			train := &Dataset{}
			perm := rng.Perm(pool.Len())
			for _, i := range perm[:n] {
				train.Add(pool.X[i], pool.Y[i])
			}
			// Inner fits stay serial: the fan-out already happens at task
			// granularity, and nesting would oversubscribe the workers.
			forestCfg := ForestConfig{Trees: 15, Seed: rng.Int63(), Workers: 1}
			f := FitForest(train, forestCfg)
			baseErr := 1 - f.Accuracy(test)
			posFrac := train.PositiveFraction()

			// One extended dataset per learning state: the training rows
			// are copied once and only the appended candidate row is
			// swapped per candidate, instead of re-copying the full
			// training set for every candidate.
			extended := &Dataset{
				X: make([][]int32, n+1),
				Y: make([]bool, n+1),
			}
			copy(extended.X, train.X)
			copy(extended.Y, train.Y)
			for c := 0; c < cfg.CandidatesPerState; c++ {
				ci := perm[n+rng.Intn(pool.Len()-n)]
				feats := stateFeatures(f, train.Len(), posFrac, pool.X[ci])

				extended.X[n], extended.Y[n] = pool.X[ci], pool.Y[ci]
				f2 := FitForest(extended, ForestConfig{Trees: 15, Seed: forestCfg.Seed, Workers: 1})
				gain := baseErr - (1 - f2.Accuracy(test))
				local.Add(feats, gain)
			}
		}
		perTask[task] = local
	}

	workers := EffectiveWorkers(cfg.Workers)
	if workers > cfg.Tasks {
		workers = cfg.Tasks
	}
	if workers <= 1 {
		for task := 0; task < cfg.Tasks; task++ {
			runTask(task)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					task := int(atomic.AddInt64(&next, 1))
					if task >= cfg.Tasks {
						return
					}
					runTask(task)
				}
			}()
		}
		wg.Wait()
	}

	// Deterministic merge: samples concatenate in task order regardless
	// of completion order.
	sample := &RegDataset{}
	for _, local := range perTask {
		sample.X = append(sample.X, local.X...)
		sample.Y = append(sample.Y, local.Y...)
	}

	l := &LAL{reg: FitRegForest(sample, RegForestConfig{
		Trees: 40, MaxDepth: 8, MinLeaf: 4, Seed: cfg.Seed + 1, Workers: cfg.Workers,
	})}
	cfg.Obs.Emit(obs.StageLALTrain, -1, start, time.Since(start),
		obs.Int("tasks", cfg.Tasks), obs.Int("states", sample.Len()),
		obs.Int("workers", workers))
	return l
}

// syntheticTask generates one random categorical binary-classification
// task: feature vectors with per-feature random cardinalities, labeled by
// a hidden noisy rule over a subset of features, split into a training
// pool and a test set.
func syntheticTask(rng *rand.Rand) (pool, test *Dataset) {
	nf := 3 + rng.Intn(4)      // 3..6 features
	cards := make([]int32, nf) // 2..8 values per feature
	for i := range cards {
		cards[i] = 2 + int32(rng.Intn(7))
	}
	// Hidden rule: y = (x[f0] in S0) xor-noise, with S0 a random half of
	// the codes of a random feature, plus a second feature's influence.
	f0 := rng.Intn(nf)
	f1 := rng.Intn(nf)
	in0 := make(map[int32]bool)
	for c := int32(0); c < cards[f0]; c++ {
		if rng.Intn(2) == 0 {
			in0[c] = true
		}
	}
	noise := 0.05 + 0.1*rng.Float64()

	gen := func(n int) *Dataset {
		d := &Dataset{}
		for i := 0; i < n; i++ {
			x := make([]int32, nf)
			for f := range x {
				x[f] = int32(rng.Intn(int(cards[f])))
			}
			y := in0[x[f0]]
			if x[f1]%2 == 0 {
				y = !y
			}
			if rng.Float64() < noise {
				y = !y
			}
			d.Add(x, y)
		}
		return d
	}
	return gen(160), gen(120)
}

// Score predicts the expected error reduction of probing candidate x given
// the current classifier f trained on trainSize examples with the given
// positive fraction. Scores are clamped to be non-negative, so they can be
// combined multiplicatively with utilities (Section 6's u·(v+1)).
func (l *LAL) Score(f *Forest, trainSize int, posFrac float64, x []int32) float64 {
	if l == nil || l.reg == nil {
		return 0
	}
	v := l.reg.Predict(stateFeatures(f, trainSize, posFrac, x))
	if v < 0 {
		return 0
	}
	return v
}

// ScoreBatch predicts Score for every candidate in xs, writing into out
// (reused when capacity suffices). The forest statistics come from the
// batch traversals (VoteStatsBatch/ProbTrueBatch) and the state-feature
// vector is a single reused buffer, so scoring allocates O(1) per batch
// instead of O(candidates). Results equal per-call Score bit for bit.
func (l *LAL) ScoreBatch(f *Forest, trainSize int, posFrac float64, xs [][]int32, out []float64) []float64 {
	out = sizedFloats(out, len(xs))
	if l == nil || l.reg == nil {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	means, variances := f.VoteStatsBatch(xs, nil, nil)
	probs := f.ProbTrueBatch(xs, nil)
	feats := make([]float64, numStateFeatures)
	for i := range xs {
		vs := voteStats{mean: means[i], variance: variances[i], prob: probs[i]}
		v := l.reg.Predict(stateFeaturesFrom(feats, trainSize, posFrac, vs))
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

var (
	sharedLALOnce sync.Once
	sharedLAL     *LAL
)

// SharedLAL returns a process-wide LAL regressor trained once with a fixed
// seed. Resolution sessions default to it so that constructing a session
// does not pay LAL training time repeatedly.
func SharedLAL() *LAL {
	sharedLALOnce.Do(func() {
		sharedLAL = TrainLAL(DefaultLALConfig(20230601))
	})
	return sharedLAL
}

package learn

import (
	"math/rand"
	"sort"
)

// TreeConfig controls decision-tree induction.
type TreeConfig struct {
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum number of examples per leaf (default 1).
	MinLeaf int
	// FeatureSample is the number of features considered per split; 0
	// means all features. Random forests pass ~√d.
	FeatureSample int
}

func (c TreeConfig) minLeaf() int {
	if c.MinLeaf <= 0 {
		return 1
	}
	return c.MinLeaf
}

// Tree is a binary classification tree over categorical features. Inner
// nodes test feature equality (x[feature] == code goes left, everything
// else right), which handles high-cardinality string metadata such as
// entities and sources without an ordinal embedding. Leaves store the
// fraction of positive training examples, so a single tree is already a
// probability estimator.
type Tree struct {
	feature     int
	code        int32
	left, right *Tree
	prob        float64
	leaf        bool
	// gain is the Gini impurity decrease of this split, weighted by the
	// node sample fraction; summed per feature it yields the mean
	// decrease in impurity feature importance (Section 7.4).
	gain float64
}

// FitTree induces a tree from the dataset rows at the given indices.
// rng drives feature subsampling; it may be nil when cfg.FeatureSample is
// 0. The dataset must be non-empty and valid.
func FitTree(d *Dataset, indices []int, cfg TreeConfig, rng *rand.Rand) *Tree {
	if len(indices) == 0 {
		return &Tree{leaf: true, prob: 0.5}
	}
	total := float64(len(indices))
	return fitNode(d, indices, cfg, rng, 0, total)
}

func fitNode(d *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand, depth int, total float64) *Tree {
	pos := 0
	for _, i := range idx {
		if d.Y[i] {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if pos == 0 || pos == len(idx) ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) ||
		len(idx) < 2*cfg.minLeaf() {
		return &Tree{leaf: true, prob: prob}
	}

	feature, code, gain := bestSplit(d, idx, cfg, rng)
	if feature < 0 {
		return &Tree{leaf: true, prob: prob}
	}

	var left, right []int
	for _, i := range idx {
		if d.X[i][feature] == code {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.minLeaf() || len(right) < cfg.minLeaf() {
		return &Tree{leaf: true, prob: prob}
	}
	return &Tree{
		feature: feature,
		code:    code,
		gain:    gain * float64(len(idx)) / total,
		left:    fitNode(d, left, cfg, rng, depth+1, total),
		right:   fitNode(d, right, cfg, rng, depth+1, total),
	}
}

// gini computes the Gini impurity of a (pos, n) class count.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// bestSplit searches for the (feature, code) equality split maximizing
// Gini impurity decrease over the node sample. With FeatureSample > 0 it
// examines a random feature subset (sampling without replacement), the
// random-forest decorrelation mechanism.
func bestSplit(d *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand) (feature int, code int32, gain float64) {
	nf := d.NumFeatures()
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if cfg.FeatureSample > 0 && cfg.FeatureSample < nf && rng != nil {
		rng.Shuffle(nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:cfg.FeatureSample]
	}

	posTotal := 0
	for _, i := range idx {
		if d.Y[i] {
			posTotal++
		}
	}
	parent := gini(posTotal, len(idx))

	feature, code, gain = -1, 0, 0
	for _, f := range features {
		// Count (n, pos) per observed code at this node.
		type counts struct{ n, pos int }
		byCode := make(map[int32]*counts)
		for _, i := range idx {
			c := d.X[i][f]
			ct := byCode[c]
			if ct == nil {
				ct = &counts{}
				byCode[c] = ct
			}
			ct.n++
			if d.Y[i] {
				ct.pos++
			}
		}
		if len(byCode) < 2 {
			continue // constant feature at this node
		}
		// Iterate codes in ascending order: map order would let tied splits
		// pick a random winner, making training irreproducible under a
		// fixed seed.
		codes := make([]int32, 0, len(byCode))
		for c := range byCode {
			codes = append(codes, c)
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
		for _, c := range codes {
			ct := byCode[c]
			nl, pl := ct.n, ct.pos
			nr, pr := len(idx)-nl, posTotal-pl
			w := parent -
				(float64(nl)*gini(pl, nl)+float64(nr)*gini(pr, nr))/float64(len(idx))
			if w > gain {
				feature, code, gain = f, c, w
			}
		}
	}
	return feature, code, gain
}

// ProbTrue returns the positive-class probability the tree assigns to x.
func (t *Tree) ProbTrue(x []int32) float64 {
	node := t
	for !node.leaf {
		if x[node.feature] == node.code {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.prob
}

// Predict returns the majority-class prediction for x.
func (t *Tree) Predict(x []int32) bool { return t.ProbTrue(x) >= 0.5 }

// Depth returns the depth of the tree (0 for a single leaf).
func (t *Tree) Depth() int {
	if t.leaf {
		return 0
	}
	l, r := t.left.Depth(), t.right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// accumulateImportance adds each split's weighted impurity decrease to
// imp[feature].
func (t *Tree) accumulateImportance(imp []float64) {
	if t.leaf {
		return
	}
	imp[t.feature] += t.gain
	t.left.accumulateImportance(imp)
	t.right.accumulateImportance(imp)
}

package learn

import (
	"math/rand"
	"slices"
)

// TreeConfig controls decision-tree induction.
type TreeConfig struct {
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum number of examples per leaf (default 1).
	MinLeaf int
	// FeatureSample is the number of features considered per split; 0
	// means all features. Random forests pass ~√d.
	FeatureSample int
}

func (c TreeConfig) minLeaf() int {
	if c.MinLeaf <= 0 {
		return 1
	}
	return c.MinLeaf
}

// Tree is a binary classification tree over categorical features. Inner
// nodes test feature equality (x[feature] == code goes left, everything
// else right), which handles high-cardinality string metadata such as
// entities and sources without an ordinal embedding. Leaves store the
// fraction of positive training examples, so a single tree is already a
// probability estimator.
type Tree struct {
	feature     int
	code        int32
	left, right *Tree
	prob        float64
	leaf        bool
	// gain is the Gini impurity decrease of this split, weighted by the
	// node sample fraction; summed per feature it yields the mean
	// decrease in impurity feature importance (Section 7.4).
	gain float64
}

// treeScratch holds the buffers one worker reuses across a sequence of
// tree fits: the bootstrap index slice (partitioned in place during
// induction), the right-side spill of the stable partition, dense
// per-code class counts (indexed code+1, so Unknown's -1 lands at 0) and
// the list of codes observed at the current node.
type treeScratch struct {
	idx    []int
	spill  []int
	counts []int
	poss   []int
	seen   []int32
	feats  []int
}

// newTreeScratch sizes a scratch for datasets with n rows, feature codes
// up to maxCode and nf features.
func newTreeScratch(n, maxCode, nf int) *treeScratch {
	return &treeScratch{
		idx:    make([]int, n),
		spill:  make([]int, 0, n),
		counts: make([]int, maxCode+2),
		poss:   make([]int, maxCode+2),
		feats:  make([]int, nf),
	}
}

// maxCode returns the largest feature code in the dataset (at least
// Unknown, i.e. -1), the sizing bound for dense per-code count buffers.
func maxCode(d *Dataset) int {
	m := int32(Unknown)
	for _, row := range d.X {
		for _, c := range row {
			if c > m {
				m = c
			}
		}
	}
	return int(m)
}

// FitTree induces a tree from the dataset rows at the given indices.
// rng drives feature subsampling; it may be nil when cfg.FeatureSample is
// 0. The dataset must be non-empty and valid. The indices slice is not
// modified.
func FitTree(d *Dataset, indices []int, cfg TreeConfig, rng *rand.Rand) *Tree {
	if len(indices) == 0 {
		return &Tree{leaf: true, prob: 0.5}
	}
	sc := newTreeScratch(len(indices), maxCode(d), d.NumFeatures())
	idx := sc.idx[:len(indices)]
	copy(idx, indices)
	return fitNode(d, idx, cfg, rng, 0, float64(len(indices)), sc)
}

// fitNode recursively induces the subtree over idx. idx is partitioned in
// place (stably, left block then right block), so the caller's slice must
// be owned by this fit.
func fitNode(d *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand, depth int, total float64, sc *treeScratch) *Tree {
	pos := 0
	for _, i := range idx {
		if d.Y[i] {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if pos == 0 || pos == len(idx) ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) ||
		len(idx) < 2*cfg.minLeaf() {
		return &Tree{leaf: true, prob: prob}
	}

	feature, code, gain := bestSplit(d, idx, cfg, rng, pos, sc)
	if feature < 0 {
		return &Tree{leaf: true, prob: prob}
	}

	// Stable in-place partition: matching rows compact to the front in
	// their original order, the rest spill and are copied back behind
	// them, so the recursion sees exactly the left/right sequences an
	// append-based partition would build — without the per-node slices.
	spill := sc.spill[:0]
	k := 0
	for _, i := range idx {
		if d.X[i][feature] == code {
			idx[k] = i
			k++
		} else {
			spill = append(spill, i)
		}
	}
	copy(idx[k:], spill)
	left, right := idx[:k], idx[k:]
	if len(left) < cfg.minLeaf() || len(right) < cfg.minLeaf() {
		return &Tree{leaf: true, prob: prob}
	}
	return &Tree{
		feature: feature,
		code:    code,
		gain:    gain * float64(len(idx)) / total,
		left:    fitNode(d, left, cfg, rng, depth+1, total, sc),
		right:   fitNode(d, right, cfg, rng, depth+1, total, sc),
	}
}

// gini computes the Gini impurity of a (pos, n) class count.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// bestSplit searches for the (feature, code) equality split maximizing
// Gini impurity decrease over the node sample. With FeatureSample > 0 it
// examines a random feature subset (sampling without replacement), the
// random-forest decorrelation mechanism.
//
// Counting uses the scratch's dense per-code arrays instead of a per-node
// map, and candidate codes are evaluated in ascending order (tied gains
// would otherwise pick a random winner, making training irreproducible
// under a fixed seed). The selected split is identical to the one the
// map-based reference implementation finds — see FitForestReference and
// the equivalence tests.
func bestSplit(d *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand, posTotal int, sc *treeScratch) (feature int, code int32, gain float64) {
	nf := d.NumFeatures()
	features := sc.feats[:nf]
	for i := range features {
		features[i] = i
	}
	if cfg.FeatureSample > 0 && cfg.FeatureSample < nf && rng != nil {
		rng.Shuffle(nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:cfg.FeatureSample]
	}

	parent := gini(posTotal, len(idx))

	feature, code, gain = -1, 0, 0
	for _, f := range features {
		// Count (n, pos) per observed code at this node, tracking which
		// codes appear so only they are visited and reset.
		seen := sc.seen[:0]
		for _, i := range idx {
			c := d.X[i][f] + 1
			if sc.counts[c] == 0 {
				seen = append(seen, c)
			}
			sc.counts[c]++
			if d.Y[i] {
				sc.poss[c]++
			}
		}
		if len(seen) >= 2 {
			slices.Sort(seen)
			for _, c := range seen {
				nl, pl := sc.counts[c], sc.poss[c]
				nr, pr := len(idx)-nl, posTotal-pl
				w := parent -
					(float64(nl)*gini(pl, nl)+float64(nr)*gini(pr, nr))/float64(len(idx))
				if w > gain {
					feature, code, gain = f, c-1, w
				}
			}
		}
		for _, c := range seen {
			sc.counts[c], sc.poss[c] = 0, 0
		}
		sc.seen = seen[:0]
	}
	return feature, code, gain
}

// ProbTrue returns the positive-class probability the tree assigns to x.
func (t *Tree) ProbTrue(x []int32) float64 {
	node := t
	for !node.leaf {
		if x[node.feature] == node.code {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.prob
}

// Predict returns the majority-class prediction for x.
func (t *Tree) Predict(x []int32) bool { return t.ProbTrue(x) >= 0.5 }

// Depth returns the depth of the tree (0 for a single leaf).
func (t *Tree) Depth() int {
	if t.leaf {
		return 0
	}
	l, r := t.left.Depth(), t.right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// accumulateImportance adds each split's weighted impurity decrease to
// imp[feature].
func (t *Tree) accumulateImportance(imp []float64) {
	if t.leaf {
		return
	}
	imp[t.feature] += t.gain
	t.left.accumulateImportance(imp)
	t.right.accumulateImportance(imp)
}

package learn

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomDataset builds a dataset of n rows over nf categorical features
// with the given cardinality, labeled by a noisy hidden rule so trees have
// real structure to find.
func randomDataset(n, nf int, card int32, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		x := make([]int32, nf)
		for f := range x {
			x[f] = int32(rng.Intn(int(card)))
			if rng.Intn(20) == 0 {
				x[f] = Unknown // exercise the Unknown → counts[0] path
			}
		}
		y := x[0]%2 == 0
		if nf > 1 && x[1] < card/3 {
			y = !y
		}
		if rng.Float64() < 0.1 {
			y = !y
		}
		d.Add(x, y)
	}
	return d
}

// workerCounts is the table every determinism test sweeps: serial, a small
// pool, and a pool far larger than the machine's single CPU.
var workerCounts = []int{1, 2, 8}

func TestFitForestBitIdenticalAcrossWorkers(t *testing.T) {
	d := randomDataset(300, 6, 9, 1)
	base := FitForest(d, ForestConfig{Trees: 24, Seed: 7, Workers: 1})
	for _, w := range workerCounts[1:] {
		f := FitForest(d, ForestConfig{Trees: 24, Seed: 7, Workers: w})
		if !reflect.DeepEqual(base.trees, f.trees) {
			t.Fatalf("Workers=%d forest differs from serial", w)
		}
	}
	// Workers=0 (one per CPU) must also match.
	f := FitForest(d, ForestConfig{Trees: 24, Seed: 7})
	if !reflect.DeepEqual(base.trees, f.trees) {
		t.Fatal("Workers=0 forest differs from serial")
	}
}

func TestFitRegForestBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := &RegDataset{}
	for i := 0; i < 250; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		d.Add(x, 2*x[0]-x[2]+0.1*rng.NormFloat64())
	}
	base := FitRegForest(d, RegForestConfig{Trees: 20, MaxDepth: 6, Seed: 11, Workers: 1})
	for _, w := range workerCounts[1:] {
		f := FitRegForest(d, RegForestConfig{Trees: 20, MaxDepth: 6, Seed: 11, Workers: w})
		if !reflect.DeepEqual(base.trees, f.trees) {
			t.Fatalf("Workers=%d regression forest differs from serial", w)
		}
	}
}

func TestTrainLALBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("LAL training is seconds-scale")
	}
	cfg := LALConfig{Tasks: 6, CandidatesPerState: 3, Seed: 5}
	cfg.Workers = 1
	base := TrainLAL(cfg)
	for _, w := range workerCounts[1:] {
		cfg.Workers = w
		l := TrainLAL(cfg)
		if !reflect.DeepEqual(base.reg.trees, l.reg.trees) {
			t.Fatalf("Workers=%d LAL regressor differs from serial", w)
		}
	}
}

// TestBestSplitMatchesReference checks the dense-counting split search
// against the retained map-based reference on many random node samples:
// same feature, same code, same gain, bit for bit.
func TestBestSplitMatchesReference(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		d := randomDataset(120, 5, 7, int64(trial))
		idx := make([]int, d.Len())
		for i := range idx {
			idx[i] = i
		}
		pos := 0
		for _, i := range idx {
			if d.Y[i] {
				pos++
			}
		}
		cfg := TreeConfig{FeatureSample: 3}
		sc := newTreeScratch(d.Len(), maxCode(d), d.NumFeatures())
		// Identical RNG streams so both searches shuffle the same feature
		// subset.
		f1, c1, g1 := bestSplit(d, idx, cfg, rand.New(rand.NewSource(int64(trial))), pos, sc)
		f2, c2, g2 := bestSplitReference(d, idx, cfg, rand.New(rand.NewSource(int64(trial))))
		if f1 != f2 || c1 != c2 || g1 != g2 {
			t.Fatalf("trial %d: dense split (%d,%d,%v) != reference (%d,%d,%v)",
				trial, f1, c1, g1, f2, c2, g2)
		}
	}
}

// TestFitTreeMatchesReference checks full-tree equivalence: induced from
// the same indices and RNG stream, the optimized and reference inductions
// build structurally identical trees.
func TestFitTreeMatchesReference(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		d := randomDataset(200, 6, 8, int64(100+trial))
		rng := rand.New(rand.NewSource(int64(trial)))
		idx := make([]int, d.Len())
		for i := range idx {
			idx[i] = rng.Intn(d.Len())
		}
		cfg := TreeConfig{FeatureSample: 3, MinLeaf: 2}
		t1 := FitTree(d, idx, cfg, rand.New(rand.NewSource(int64(trial))))
		t2 := fitTreeReference(d, append([]int(nil), idx...), cfg, rand.New(rand.NewSource(int64(trial))))
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("trial %d: optimized tree differs from reference", trial)
		}
	}
}

func TestProbTrueBatchMatchesScalar(t *testing.T) {
	d := randomDataset(200, 5, 6, 9)
	f := FitForest(d, ForestConfig{Trees: 15, Seed: 2, Workers: 1})
	xs := d.X[:50]
	out := f.ProbTrueBatch(xs, nil)
	for i, x := range xs {
		if want := f.ProbTrue(x); out[i] != want {
			t.Fatalf("candidate %d: batch %v != scalar %v", i, out[i], want)
		}
	}
	// Buffer reuse must not change results.
	out2 := f.ProbTrueBatch(xs, out)
	if &out2[0] != &out[0] {
		t.Error("batch did not reuse the provided buffer")
	}
	for i, x := range xs {
		if want := f.ProbTrue(x); out2[i] != want {
			t.Fatalf("reused buffer candidate %d: %v != %v", i, out2[i], want)
		}
	}
}

func TestVoteStatsBatchMatchesScalar(t *testing.T) {
	d := randomDataset(200, 5, 6, 13)
	f := FitForest(d, ForestConfig{Trees: 15, Seed: 4, Workers: 1})
	xs := d.X[:40]
	means, variances := f.VoteStatsBatch(xs, nil, nil)
	for i, x := range xs {
		m, v := f.VoteStats(x)
		if means[i] != m || variances[i] != v {
			t.Fatalf("candidate %d: batch (%v,%v) != scalar (%v,%v)",
				i, means[i], variances[i], m, v)
		}
	}
}

func TestLALScoreBatchMatchesScalar(t *testing.T) {
	d := randomDataset(200, 5, 6, 17)
	f := FitForest(d, ForestConfig{Trees: 15, Seed: 6, Workers: 1})
	l := TrainLAL(LALConfig{Tasks: 3, CandidatesPerState: 2, Seed: 8, Workers: 1})
	xs := d.X[:40]
	out := l.ScoreBatch(f, d.Len(), d.PositiveFraction(), xs, nil)
	for i, x := range xs {
		if want := l.Score(f, d.Len(), d.PositiveFraction(), x); out[i] != want {
			t.Fatalf("candidate %d: batch %v != scalar %v", i, out[i], want)
		}
	}
	// A nil LAL scores zero everywhere, matching Score's nil behaviour.
	var nilLAL *LAL
	zeros := nilLAL.ScoreBatch(f, d.Len(), 0.5, xs, out)
	for i := range zeros {
		if zeros[i] != 0 {
			t.Fatal("nil LAL must score 0")
		}
	}
}

func TestEncoderCovers(t *testing.T) {
	metas := []map[string]string{
		{"source": "a.com", "rel": "acq"},
		{"source": "b.com", "rel": "roles"},
	}
	enc := NewEncoder(metas)
	cases := []struct {
		meta map[string]string
		want bool
	}{
		{map[string]string{"source": "a.com"}, true},
		{map[string]string{"source": "a.com", "rel": "roles"}, true},
		{map[string]string{}, true},
		{map[string]string{"source": "c.com"}, false},      // unseen value
		{map[string]string{"category": "sports"}, false},   // unseen attribute
		{map[string]string{"rel": "acq", "x": "1"}, false}, // mixed
	}
	for i, c := range cases {
		if got := enc.Covers(c.meta); got != c.want {
			t.Errorf("case %d: Covers(%v) = %v, want %v", i, c.meta, got, c.want)
		}
	}
}

package learn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncoderBasics(t *testing.T) {
	metas := []map[string]string{
		{"source": "a.com", "rel": "acq"},
		{"source": "b.com"},
		{"rel": "roles", "cat": "sports"},
	}
	enc := NewEncoder(metas)
	if enc.NumFeatures() != 3 {
		t.Fatalf("NumFeatures = %d, want 3 (cat, rel, source)", enc.NumFeatures())
	}
	// Attributes sorted by name.
	if enc.Attr(0) != "cat" || enc.Attr(1) != "rel" || enc.Attr(2) != "source" {
		t.Fatalf("attrs = %s %s %s", enc.Attr(0), enc.Attr(1), enc.Attr(2))
	}
	x := enc.Encode(map[string]string{"source": "a.com", "rel": "acq"})
	if x[0] != Unknown {
		t.Error("missing attribute must encode Unknown")
	}
	if x[1] == Unknown || x[2] == Unknown {
		t.Error("known values must not encode Unknown")
	}
	// Same value → same code; different values → different codes.
	y := enc.Encode(map[string]string{"source": "a.com"})
	if y[2] != x[2] {
		t.Error("same value must share a code")
	}
	z := enc.Encode(map[string]string{"source": "b.com"})
	if z[2] == x[2] {
		t.Error("distinct values must not share a code")
	}
	// Unseen value encodes Unknown.
	u := enc.Encode(map[string]string{"source": "zzz.com"})
	if u[2] != Unknown {
		t.Error("unseen value must encode Unknown")
	}
	if enc.Cardinality(2) != 2 {
		t.Errorf("Cardinality(source) = %d, want 2", enc.Cardinality(2))
	}
}

func TestDatasetValidate(t *testing.T) {
	d := &Dataset{}
	d.Add([]int32{1, 2}, true)
	d.Add([]int32{3, 4}, false)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.NumFeatures() != 2 {
		t.Fatal("Len/NumFeatures wrong")
	}
	if got := d.PositiveFraction(); got != 0.5 {
		t.Errorf("PositiveFraction = %f", got)
	}
	d.Add([]int32{1}, true)
	if err := d.Validate(); err == nil {
		t.Error("ragged rows must fail validation")
	}
	bad := &Dataset{X: [][]int32{{1}}}
	if err := bad.Validate(); err == nil {
		t.Error("X/Y length mismatch must fail validation")
	}
	empty := &Dataset{}
	if empty.PositiveFraction() != 0.5 {
		t.Error("empty dataset prior must be 0.5")
	}
}

// separableDataset builds a dataset where feature 0 fully determines the
// label (code 0 → true) and feature 1 is noise.
func separableDataset(n int, rng *rand.Rand) *Dataset {
	d := &Dataset{}
	for i := 0; i < n; i++ {
		f0 := int32(rng.Intn(3))
		d.Add([]int32{f0, int32(rng.Intn(5))}, f0 == 0)
	}
	return d
}

func TestTreeLearnsSeparableRule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := separableDataset(200, rng)
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	tree := FitTree(d, idx, TreeConfig{}, nil)
	for i, x := range d.X {
		if tree.Predict(x) != d.Y[i] {
			t.Fatalf("tree misclassifies separable example %d", i)
		}
	}
	if tree.Depth() == 0 {
		t.Error("tree should have split")
	}
}

func TestTreePureNodeIsLeaf(t *testing.T) {
	d := &Dataset{}
	d.Add([]int32{0}, true)
	d.Add([]int32{1}, true)
	tree := FitTree(d, []int{0, 1}, TreeConfig{}, nil)
	if !tree.leaf || tree.prob != 1 {
		t.Fatal("pure node must be a probability-1 leaf")
	}
	empty := FitTree(d, nil, TreeConfig{}, nil)
	if !empty.leaf || empty.prob != 0.5 {
		t.Fatal("empty node must be a 0.5 leaf")
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := separableDataset(200, rng)
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	tree := FitTree(d, idx, TreeConfig{MaxDepth: 1}, nil)
	if got := tree.Depth(); got > 1 {
		t.Fatalf("Depth = %d, want <= 1", got)
	}
}

func TestForestProbabilityEstimation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := separableDataset(300, rng)
	f := FitForest(d, ForestConfig{Trees: 50, Seed: 7})
	if f.NumTrees() != 50 {
		t.Fatalf("NumTrees = %d", f.NumTrees())
	}
	// Vote fractions must be near-certain on the separable rule.
	pTrue := f.ProbTrue([]int32{0, 2})
	pFalse := f.ProbTrue([]int32{1, 2})
	if pTrue < 0.9 {
		t.Errorf("P(true|f0=0) = %f, want > 0.9", pTrue)
	}
	if pFalse > 0.1 {
		t.Errorf("P(true|f0=1) = %f, want < 0.1", pFalse)
	}
	if acc := f.Accuracy(d); acc < 0.98 {
		t.Errorf("training accuracy = %f", acc)
	}
}

func TestForestDeterministicInSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := separableDataset(100, rng)
	a := FitForest(d, ForestConfig{Trees: 20, Seed: 11})
	b := FitForest(d, ForestConfig{Trees: 20, Seed: 11})
	for trial := 0; trial < 20; trial++ {
		x := []int32{int32(trial % 3), int32(trial % 5)}
		if a.ProbTrue(x) != b.ProbTrue(x) {
			t.Fatal("same seed must give identical forests")
		}
	}
}

func TestForestEmptyDataset(t *testing.T) {
	f := FitForest(&Dataset{}, ForestConfig{Trees: 10, Seed: 1})
	if got := f.ProbTrue([]int32{1, 2, 3}); got != 0.5 {
		t.Fatalf("empty-forest probability = %f, want 0.5", got)
	}
	mean, variance := f.VoteStats([]int32{1})
	if mean != 0.5 || variance != 0 {
		t.Fatal("empty-forest vote stats wrong")
	}
	if f.Accuracy(&Dataset{}) != 0 {
		t.Fatal("accuracy on empty data must be 0")
	}
}

// Vote fraction is a probability: always within [0,1].
func TestForestProbabilityRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := separableDataset(80, rng)
	f := FitForest(d, ForestConfig{Trees: 30, Seed: 9})
	check := func(a, b int32) bool {
		p := f.ProbTrue([]int32{a, b})
		return p >= 0 && p <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureImportances(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := separableDataset(300, rng)
	f := FitForest(d, ForestConfig{Trees: 40, Seed: 13})
	imp := f.FeatureImportances()
	if len(imp) != 2 {
		t.Fatalf("importances len = %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatal("negative importance")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %f, want 1", sum)
	}
	// The label-determining feature must dominate.
	if imp[0] < imp[1] {
		t.Errorf("importances = %v; feature 0 determines labels and should dominate", imp)
	}
}

func TestNaiveBayes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := separableDataset(300, rng)
	nb := FitNaiveBayes(d)
	if p := nb.ProbTrue([]int32{0, 1}); p < 0.8 {
		t.Errorf("NB P(true|f0=0) = %f, want high", p)
	}
	if p := nb.ProbTrue([]int32{2, 1}); p > 0.2 {
		t.Errorf("NB P(true|f0=2) = %f, want low", p)
	}
	correct := 0
	for i, x := range d.X {
		if nb.Predict(x) == d.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc < 0.9 {
		t.Errorf("NB accuracy = %f", acc)
	}
}

func TestNaiveBayesDegenerate(t *testing.T) {
	empty := FitNaiveBayes(&Dataset{})
	if empty.ProbTrue([]int32{0}) != 0.5 {
		t.Error("empty NB must return 0.5")
	}
	onlyPos := &Dataset{}
	onlyPos.Add([]int32{1}, true)
	if FitNaiveBayes(onlyPos).ProbTrue([]int32{1}) != 1 {
		t.Error("single-class (positive) NB must return 1")
	}
	onlyNeg := &Dataset{}
	onlyNeg.Add([]int32{1}, false)
	if FitNaiveBayes(onlyNeg).ProbTrue([]int32{1}) != 0 {
		t.Error("single-class (negative) NB must return 0")
	}
}

func TestRegForestFitsLinearSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := &RegDataset{}
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		d.Add(x, 3*x[0]) // target depends only on feature 0
	}
	f := FitRegForest(d, RegForestConfig{Trees: 40, Seed: 21})
	if f.NumTrees() != 40 {
		t.Fatal("NumTrees wrong")
	}
	var mse float64
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		err := f.Predict(x) - 3*x[0]
		mse += err * err
	}
	mse /= 100
	if mse > 0.1 {
		t.Errorf("regression MSE = %f, want < 0.1", mse)
	}
	// Empty forest predicts 0.
	if FitRegForest(&RegDataset{}, RegForestConfig{}).Predict([]float64{1}) != 0 {
		t.Error("empty regression forest must predict 0")
	}
}

func TestRegForestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := &RegDataset{}
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64()}
		d.Add(x, x[0]*x[0])
	}
	a := FitRegForest(d, RegForestConfig{Trees: 20, Seed: 5})
	b := FitRegForest(d, RegForestConfig{Trees: 20, Seed: 5})
	for i := 0; i < 20; i++ {
		x := []float64{float64(i) / 20}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed must give identical regressors")
		}
	}
}

func TestLALScoresAreNonNegativeAndInformative(t *testing.T) {
	lal := TrainLAL(LALConfig{Tasks: 8, CandidatesPerState: 4, Seed: 31})
	rng := rand.New(rand.NewSource(14))
	d := separableDataset(30, rng)
	f := FitForest(d, ForestConfig{Trees: 20, Seed: 15})
	posFrac := d.PositiveFraction()
	for trial := 0; trial < 50; trial++ {
		x := []int32{int32(rng.Intn(3)), int32(rng.Intn(5))}
		if s := lal.Score(f, d.Len(), posFrac, x); s < 0 {
			t.Fatalf("negative LAL score %f", s)
		}
	}
	// Nil LAL scores 0 (selector degenerates to utility-only).
	var nilLAL *LAL
	if nilLAL.Score(f, d.Len(), posFrac, []int32{0, 0}) != 0 {
		t.Error("nil LAL must score 0")
	}
}

func TestSharedLALSingleton(t *testing.T) {
	a := SharedLAL()
	b := SharedLAL()
	if a != b {
		t.Fatal("SharedLAL must return the same instance")
	}
	if a == nil || a.reg == nil {
		t.Fatal("SharedLAL not trained")
	}
}

func TestStateFeaturesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	d := separableDataset(50, rng)
	f := FitForest(d, ForestConfig{Trees: 10, Seed: 17})
	feats := stateFeatures(f, d.Len(), d.PositiveFraction(), []int32{0, 0})
	if len(feats) != numStateFeatures {
		t.Fatalf("state features = %d, want %d", len(feats), numStateFeatures)
	}
	for i, v := range feats {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d is %f", i, v)
		}
	}
}

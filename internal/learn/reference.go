package learn

import (
	"math"
	"math/rand"
	"sort"
)

// This file preserves the pre-parallel forest-training implementation —
// one shared sequential RNG, map-based split counting, per-node slice
// allocation — exactly as it shipped before the parallel, warm-started
// substrate. It exists for two reasons: BenchmarkForestFit and
// BenchmarkRetrain measure the optimized path against it (the speedups in
// results/BENCH_learn.json are new-vs-this), and the equivalence tests
// use its split search as an independent oracle for the dense-counting
// bestSplit. It is not used by any production path.

// FitForestReference trains a forest with the reference (pre-optimization)
// loop. Because the reference draws every tree's randomness from one
// shared sequential RNG, its ensembles differ from FitForest's per-tree
// streams; it is a cost baseline, not a model-equivalence target.
func FitForestReference(d *Dataset, cfg ForestConfig) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	f := &Forest{nf: d.NumFeatures(), cfg: cfg}
	if d.Len() == 0 {
		return f
	}
	featSample := int(math.Ceil(math.Sqrt(float64(d.NumFeatures()))))
	rng := rand.New(rand.NewSource(cfg.Seed))
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, d.Len())
		for i := range idx {
			idx[i] = rng.Intn(d.Len())
		}
		tree := fitTreeReference(d, idx, TreeConfig{
			MaxDepth:      cfg.MaxDepth,
			MinLeaf:       cfg.MinLeaf,
			FeatureSample: featSample,
		}, rng)
		f.trees = append(f.trees, tree)
	}
	return f
}

// fitTreeReference is the reference tree induction entry point.
func fitTreeReference(d *Dataset, indices []int, cfg TreeConfig, rng *rand.Rand) *Tree {
	if len(indices) == 0 {
		return &Tree{leaf: true, prob: 0.5}
	}
	return fitNodeReference(d, indices, cfg, rng, 0, float64(len(indices)))
}

func fitNodeReference(d *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand, depth int, total float64) *Tree {
	pos := 0
	for _, i := range idx {
		if d.Y[i] {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if pos == 0 || pos == len(idx) ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) ||
		len(idx) < 2*cfg.minLeaf() {
		return &Tree{leaf: true, prob: prob}
	}

	feature, code, gain := bestSplitReference(d, idx, cfg, rng)
	if feature < 0 {
		return &Tree{leaf: true, prob: prob}
	}

	var left, right []int
	for _, i := range idx {
		if d.X[i][feature] == code {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.minLeaf() || len(right) < cfg.minLeaf() {
		return &Tree{leaf: true, prob: prob}
	}
	return &Tree{
		feature: feature,
		code:    code,
		gain:    gain * float64(len(idx)) / total,
		left:    fitNodeReference(d, left, cfg, rng, depth+1, total),
		right:   fitNodeReference(d, right, cfg, rng, depth+1, total),
	}
}

// bestSplitReference is the map-counting split search the dense bestSplit
// replaced; both must select the same (feature, code, gain).
func bestSplitReference(d *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand) (feature int, code int32, gain float64) {
	nf := d.NumFeatures()
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if cfg.FeatureSample > 0 && cfg.FeatureSample < nf && rng != nil {
		rng.Shuffle(nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:cfg.FeatureSample]
	}

	posTotal := 0
	for _, i := range idx {
		if d.Y[i] {
			posTotal++
		}
	}
	parent := gini(posTotal, len(idx))

	feature, code, gain = -1, 0, 0
	for _, f := range features {
		type counts struct{ n, pos int }
		byCode := make(map[int32]*counts)
		for _, i := range idx {
			c := d.X[i][f]
			ct := byCode[c]
			if ct == nil {
				ct = &counts{}
				byCode[c] = ct
			}
			ct.n++
			if d.Y[i] {
				ct.pos++
			}
		}
		if len(byCode) < 2 {
			continue
		}
		codes := make([]int32, 0, len(byCode))
		for c := range byCode {
			codes = append(codes, c)
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
		for _, c := range codes {
			ct := byCode[c]
			nl, pl := ct.n, ct.pos
			nr, pr := len(idx)-nl, posTotal-pl
			w := parent -
				(float64(nl)*gini(pl, nl)+float64(nr)*gini(pr, nr))/float64(len(idx))
			if w > gain {
				feature, code, gain = f, c, w
			}
		}
	}
	return feature, code, gain
}

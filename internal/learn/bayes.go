package learn

import "math"

// NaiveBayes is a categorical naive Bayes classifier with Laplace
// smoothing. The paper reports experimenting with naive Bayes as an
// alternative Learner, "which performed similarly or slightly worse than
// RF" (Section 4); it is kept here for the model ablation.
type NaiveBayes struct {
	nf         int
	priorPos   float64
	nPos, nNeg int
	// counts[class][feature][code] = occurrences
	countsPos []map[int32]int
	countsNeg []map[int32]int
	// cards[feature] = number of distinct codes observed (smoothing
	// denominator).
	cards []int
}

// FitNaiveBayes trains the classifier on d.
func FitNaiveBayes(d *Dataset) *NaiveBayes {
	nf := d.NumFeatures()
	nb := &NaiveBayes{
		nf:        nf,
		countsPos: make([]map[int32]int, nf),
		countsNeg: make([]map[int32]int, nf),
		cards:     make([]int, nf),
	}
	for f := 0; f < nf; f++ {
		nb.countsPos[f] = make(map[int32]int)
		nb.countsNeg[f] = make(map[int32]int)
	}
	seen := make([]map[int32]struct{}, nf)
	for f := range seen {
		seen[f] = make(map[int32]struct{})
	}
	for i, x := range d.X {
		if d.Y[i] {
			nb.nPos++
		} else {
			nb.nNeg++
		}
		for f, code := range x {
			seen[f][code] = struct{}{}
			if d.Y[i] {
				nb.countsPos[f][code]++
			} else {
				nb.countsNeg[f][code]++
			}
		}
	}
	for f := range seen {
		nb.cards[f] = len(seen[f])
	}
	if n := nb.nPos + nb.nNeg; n > 0 {
		nb.priorPos = float64(nb.nPos) / float64(n)
	} else {
		nb.priorPos = 0.5
	}
	return nb
}

// ProbTrue returns the posterior P(correct | x) under the conditional
// independence assumption, computed in log space for stability.
func (nb *NaiveBayes) ProbTrue(x []int32) float64 {
	if nb.nPos+nb.nNeg == 0 {
		return 0.5
	}
	// Degenerate single-class training data: the posterior is the prior.
	if nb.nPos == 0 {
		return 0
	}
	if nb.nNeg == 0 {
		return 1
	}
	logPos := math.Log(nb.priorPos)
	logNeg := math.Log(1 - nb.priorPos)
	for f := 0; f < nb.nf && f < len(x); f++ {
		k := float64(nb.cards[f] + 1) // +1 for unseen codes
		logPos += math.Log((float64(nb.countsPos[f][x[f]]) + 1) / (float64(nb.nPos) + k))
		logNeg += math.Log((float64(nb.countsNeg[f][x[f]]) + 1) / (float64(nb.nNeg) + k))
	}
	// Normalize: p = e^lp / (e^lp + e^ln) computed via the stable sigmoid.
	return 1 / (1 + math.Exp(logNeg-logPos))
}

// Predict returns the MAP class for x.
func (nb *NaiveBayes) Predict(x []int32) bool { return nb.ProbTrue(x) >= 0.5 }

package ibe

import (
	"fmt"
	"math/rand"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/resolve"
)

// randomReadOnce builds a read-once DNF: disjoint terms over fresh vars.
func randomReadOnce(rng *rand.Rand, maxTerms, maxTermSize int) boolexpr.Expr {
	next := boolexpr.Var(0)
	nt := 1 + rng.Intn(maxTerms)
	terms := make([]boolexpr.Term, 0, nt)
	for i := 0; i < nt; i++ {
		size := 1 + rng.Intn(maxTermSize)
		vars := make([]boolexpr.Var, 0, size)
		for j := 0; j < size; j++ {
			vars = append(vars, next)
			next++
		}
		terms = append(terms, boolexpr.NewTerm(vars...))
	}
	return boolexpr.NewExpr(terms...)
}

func randomExpr(rng *rand.Rand, nvars, maxTerms, maxTermSize int) boolexpr.Expr {
	nt := 1 + rng.Intn(maxTerms)
	terms := make([]boolexpr.Term, 0, nt)
	for i := 0; i < nt; i++ {
		size := 1 + rng.Intn(maxTermSize)
		vars := make([]boolexpr.Var, 0, size)
		for j := 0; j < size; j++ {
			vars = append(vars, boolexpr.Var(rng.Intn(nvars)))
		}
		terms = append(terms, boolexpr.NewTerm(vars...))
	}
	return boolexpr.NewExpr(terms...)
}

func randomProbs(rng *rand.Rand, n int) Probs {
	p := make(map[boolexpr.Var]float64, n)
	for v := 0; v < n; v++ {
		p[boolexpr.Var(v)] = 0.05 + 0.9*rng.Float64()
	}
	return func(v boolexpr.Var) float64 { return p[v] }
}

func TestIsReadOnce(t *testing.T) {
	ro := boolexpr.NewExpr(boolexpr.NewTerm(0, 1), boolexpr.NewTerm(2))
	if !IsReadOnce(ro) {
		t.Error("disjoint terms are read-once")
	}
	shared := boolexpr.NewExpr(boolexpr.NewTerm(0, 1), boolexpr.NewTerm(0, 2))
	if IsReadOnce(shared) {
		t.Error("repeated variable is not read-once")
	}
}

func TestReadOnceStepPicksLeastLikelyInLikeliestTerm(t *testing.T) {
	// Terms {0,1} and {2}: W({0,1}) = .9*.9/2 = .405, W({2}) = .6.
	e := boolexpr.NewExpr(boolexpr.NewTerm(0, 1), boolexpr.NewTerm(2))
	p := func(v boolexpr.Var) float64 {
		return map[boolexpr.Var]float64{0: 0.9, 1: 0.9, 2: 0.6}[v]
	}
	if got := ReadOnceStep(e, p); got != 2 {
		t.Errorf("picked %d, want 2 (term weight 0.6 > 0.405)", got)
	}
	// Make term {0,1} the likeliest; the less likely of {0,1} wins.
	p2 := func(v boolexpr.Var) float64 {
		return map[boolexpr.Var]float64{0: 0.95, 1: 0.9, 2: 0.3}[v]
	}
	if got := ReadOnceStep(e, p2); got != 1 {
		t.Errorf("picked %d, want 1 (least likely in likeliest term)", got)
	}
}

func TestFalseTargetingStep(t *testing.T) {
	// x0 occurs in 2 terms with p=.5 → score 1.0; x1/x2 occur once.
	e := boolexpr.NewExpr(boolexpr.NewTerm(0, 1), boolexpr.NewTerm(0, 2))
	p := func(boolexpr.Var) float64 { return 0.5 }
	if got := FalseTargetingStep(e, p); got != 0 {
		t.Errorf("picked %d, want 0", got)
	}
}

// Evaluate must always terminate with the correct truth value and never
// exceed the variable budget, for every step rule.
func TestEvaluateCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rules := map[string]func(int) StepRule{
		"read-once":   func(int) StepRule { return ReadOnceStep },
		"false-first": func(int) StepRule { return FalseTargetingStep },
		"alternating": AlternatingStep,
	}
	for name, mk := range rules {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 200; trial++ {
				e := randomExpr(rng, 10, 5, 3)
				p := randomProbs(rng, 10)
				truth := boolexpr.NewValuation()
				for v := 0; v < 10; v++ {
					truth.Set(boolexpr.Var(v), rng.Intn(2) == 0)
				}
				orc := func(v boolexpr.Var) (bool, error) {
					b, _ := truth.Get(v)
					return b, nil
				}
				got, obs, err := Evaluate(e, p, mk, orc)
				if err != nil {
					t.Fatal(err)
				}
				if got != e.Eval(truth) {
					t.Fatalf("trial %d: evaluated %t, truth %t (expr %v)", trial, got, e.Eval(truth), e)
				}
				if obs > len(e.Vars()) {
					t.Fatalf("trial %d: %d observations exceed %d variables", trial, obs, len(e.Vars()))
				}
			}
		})
	}
}

// The paper's recasting claim (Section 5): "for any Boolean expression and
// probabilities, the probe that the algorithm would have chosen is given
// the highest utility score" — verified for RO vs ReadOnceStep and for
// General's Formula-3 rounds vs FalseTargetingStep, on single expressions.
func TestUtilityArgmaxMatchesAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		e := randomExpr(rng, 8, 4, 3)
		if e.Decided() {
			continue
		}
		probs := randomProbs(rng, 8)

		w, err := resolve.NewWorksetForBench([]boolexpr.Expr{e}, []int{0}, false)
		if err != nil {
			t.Fatal(err)
		}
		candidates := resolve.WorksetCandidates(w)
		prob := func(v boolexpr.Var) float64 { return probs(v) }

		// RO: the utility argmax must be a valid Boros–Ünlüyurt choice —
		// a minimum-probability variable of a maximum-weight term. (When
		// weights tie, both the algorithm and the utility may pick any of
		// the tied terms, so we check validity rather than identity.)
		roScores := resolve.RO{}.Scores(w, prob, candidates, 0)
		argmax := candidates[0]
		for _, x := range candidates {
			if roScores[x] > roScores[argmax] {
				argmax = x
			}
		}
		maxW := -1.0
		weight := func(tm boolexpr.Term) float64 {
			v := 1.0
			for _, x := range tm {
				v *= probs(x)
			}
			return v / float64(len(tm))
		}
		for _, tm := range e.Terms() {
			if w := weight(tm); w > maxW {
				maxW = w
			}
		}
		minP := 2.0
		inMaxTerm := false
		for _, tm := range e.Terms() {
			if weight(tm) < maxW-1e-12 {
				continue
			}
			for _, x := range tm {
				if probs(x) < minP {
					minP = probs(x)
				}
				if x == argmax {
					inMaxTerm = true
				}
			}
		}
		if !inMaxTerm {
			t.Fatalf("trial %d: RO argmax %d not in a maximum-weight term of %v", trial, argmax, e)
		}
		if probs(argmax) > minP+1e-12 {
			t.Fatalf("trial %d: RO argmax %d has p=%.4f, min over max-weight terms is %.4f",
				trial, argmax, probs(argmax), minP)
		}

		// General's even rounds are exactly Formula (3): the algorithm's
		// choice must carry the (weakly) highest score.
		genScores := resolve.General{}.Scores(w, prob, candidates, 0)
		algo := FalseTargetingStep(e, probs)
		for x, s := range genScores {
			if s > genScores[algo]+1e-9 {
				t.Fatalf("trial %d: General/F3 prefers %d (%.6f) over the algorithm's %d (%.6f) for %v",
					trial, x, s, algo, genScores[algo], e)
			}
		}
	}
}

// On read-once expressions the RO-driven evaluator should use no more
// observations on average than random order (Boros–Ünlüyurt optimality,
// checked statistically).
func TestReadOnceBeatsRandomOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var roTotal, randTotal int
	for trial := 0; trial < 300; trial++ {
		e := randomReadOnce(rng, 4, 3)
		nvars := len(e.Vars())
		p := make(map[boolexpr.Var]float64, nvars)
		truth := boolexpr.NewValuation()
		for _, v := range e.Vars() {
			p[v] = 0.05 + 0.9*rng.Float64()
			truth.Set(v, rng.Float64() < p[v])
		}
		probs := func(v boolexpr.Var) float64 { return p[v] }
		orc := func(v boolexpr.Var) (bool, error) {
			b, _ := truth.Get(v)
			return b, nil
		}

		_, obs, err := Evaluate(e, probs, func(int) StepRule { return ReadOnceStep }, orc)
		if err != nil {
			t.Fatal(err)
		}
		roTotal += obs

		randomRule := func(int) StepRule {
			return func(ex boolexpr.Expr, _ Probs) boolexpr.Var {
				vars := ex.Vars()
				return vars[rng.Intn(len(vars))]
			}
		}
		_, obs, err = Evaluate(e, probs, randomRule, orc)
		if err != nil {
			t.Fatal(err)
		}
		randTotal += obs
	}
	if roTotal > randTotal {
		t.Errorf("read-once rule used %d observations, random used %d", roTotal, randTotal)
	}
	t.Log(fmt.Sprintf("read-once %d vs random %d observations over 300 trials", roTotal, randTotal))
}

// Package ibe implements the classic sequential Interactive Boolean
// Evaluation algorithms the paper's utility functions are derived from
// (Section 5): given a monotone Boolean expression and independent
// variable probabilities, repeatedly choose a variable to observe until
// the expression's truth value is determined.
//
//   - ReadOnceStep: Boros and Ünlüyurt's rule for (read-once) DNF —
//     select the least-likely-True variable inside the likeliest term
//     (recast by the paper as the RO utility, Formula 2);
//   - AlternatingStep: Allen, Hellerstein, Kletenik and Ünlüyurt's
//     alternation between a False-targeting and a True-targeting rule
//     (recast as the General utility, Formulas 3 + 2);
//   - Evaluator: the surrounding observe–simplify loop, usable with any
//     step rule, with an oracle revealing variable values.
//
// These are reference implementations: the resolution framework proper
// scores *all* candidates with utility functions instead (so that scores
// can be combined with learning signals), and the tests of this package
// verify the paper's claim that the utility argmax coincides with the
// algorithmic choice on single expressions.
package ibe

import (
	"errors"
	"math"
	"sort"

	"qres/internal/boolexpr"
)

// Probs supplies the (assumed independent) probability that each variable
// is True.
type Probs func(boolexpr.Var) float64

// StepRule chooses the next variable to observe for an undecided
// expression. Implementations must return a variable of the expression.
type StepRule func(e boolexpr.Expr, p Probs) boolexpr.Var

// ReadOnceStep is the Boros–Ünlüyurt selection: among the DNF terms pick
// one maximizing W(T) = (1/|T|)·Π p(x), then within it the variable with
// the smallest p(x). Ties break deterministically toward smaller variable
// IDs. (For read-once expressions this yields an optimal expected-cost
// strategy; the paper's Formula (2) generalizes the same preference to a
// score over arbitrary expression sets.)
func ReadOnceStep(e boolexpr.Expr, p Probs) boolexpr.Var {
	bestTerm := -1
	bestW := math.Inf(-1)
	terms := e.Terms()
	for i, t := range terms {
		w := 1.0
		for _, x := range t {
			w *= p(x)
		}
		w /= float64(len(t))
		if w > bestW {
			bestW, bestTerm = w, i
		}
	}
	term := terms[bestTerm]
	best := term[0]
	for _, x := range term[1:] {
		if p(x) < p(best) {
			best = x
		}
	}
	return best
}

// FalseTargetingStep is the AHKU False-direction rule: pick the variable
// maximizing (1 − p(x)) · (number of DNF terms containing x), the expected
// count of terms its falsification eliminates (the paper's Formula 3).
func FalseTargetingStep(e boolexpr.Expr, p Probs) boolexpr.Var {
	counts := make(map[boolexpr.Var]int)
	for _, t := range e.Terms() {
		for _, x := range t {
			counts[x]++
		}
	}
	vars := make([]boolexpr.Var, 0, len(counts))
	for x := range counts {
		vars = append(vars, x)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	best, bestScore := vars[0], math.Inf(-1)
	for _, x := range vars {
		score := (1 - p(x)) * float64(counts[x])
		if score > bestScore {
			best, bestScore = x, score
		}
	}
	return best
}

// AlternatingStep alternates FalseTargetingStep (even rounds) with
// ReadOnceStep (odd rounds), the AHKU scheme the General utility recasts.
func AlternatingStep(round int) StepRule {
	return func(e boolexpr.Expr, p Probs) boolexpr.Var {
		if round%2 == 0 {
			return FalseTargetingStep(e, p)
		}
		return ReadOnceStep(e, p)
	}
}

// Oracle reveals variable truth values.
type Oracle func(boolexpr.Var) (bool, error)

// Evaluate drives the observe–simplify loop on a single expression with a
// per-round step rule (round counts from 0): it returns the expression's
// truth value and the number of observations used.
func Evaluate(e boolexpr.Expr, p Probs, step func(round int) StepRule, orc Oracle) (value bool, observations int, err error) {
	val := boolexpr.NewValuation()
	round := 0
	for !e.Decided() {
		rule := step(round)
		if rule == nil {
			return false, observations, errors.New("ibe: nil step rule")
		}
		x := rule(e, p)
		if val.Assigned(x) {
			return false, observations, errors.New("ibe: rule re-selected an observed variable")
		}
		answer, err := orc(x)
		if err != nil {
			return false, observations, err
		}
		observations++
		val.Set(x, answer)
		e = e.Simplify(val)
		round++
	}
	return e.Value(), observations, nil
}

// IsReadOnce reports whether the expression mentions no variable more than
// once — the class for which Boros and Ünlüyurt's algorithm is optimal and
// which SJ and SPU queries induce per expression (paper Section 3).
func IsReadOnce(e boolexpr.Expr) bool {
	seen := make(map[boolexpr.Var]bool)
	for _, t := range e.Terms() {
		for _, x := range t {
			if seen[x] {
				return false
			}
			seen[x] = true
		}
	}
	return true
}

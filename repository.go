package qres

import (
	"io"

	"qres/internal/boolexpr"
	"qres/internal/resolve"
)

// Repository is a shared Known Probes Repository (paper Figure 3): the
// accumulated set of verified tuples with their metadata and answers. A
// repository passed to multiple sessions via WithRepository is extended in
// place by every answer any of them obtains, so later sessions reuse
// earlier verifications without re-asking the oracle — the paper's
// accumulation of probe answers across queries and sessions. It is safe
// for concurrent use by parallel sessions.
type Repository struct {
	db    *DB
	inner *resolve.Repository
}

// ProbeRepository returns the database's shared probes repository handle,
// creating an empty one on first use. The database must be frozen (a
// query must have run) so tuple variables exist.
func (db *DB) ProbeRepository() *Repository {
	if db.sharedRepo == nil {
		db.sharedRepo = &Repository{db: db, inner: resolve.NewRepository()}
	}
	return db.sharedRepo
}

// Len returns the number of recorded verifications.
func (r *Repository) Len() int { return r.inner.Len() }

// Known reports the recorded answer for a tuple, if any.
func (r *Repository) Known(ref TupleRef) (correct, known bool) {
	v, err := r.db.varFor(ref)
	if err != nil {
		return false, false
	}
	return r.inner.Answer(v)
}

// Record stores a verified answer for a tuple directly (e.g. imported
// from an external verification pipeline); sessions sharing the
// repository will reuse it.
func (r *Repository) Record(ref TupleRef, correct bool) error {
	v, err := r.db.varFor(ref)
	if err != nil {
		return err
	}
	r.inner.AddVar(v, r.db.udb.MetaFor(v), correct)
	return nil
}

// Save writes the repository as JSON Lines (one probe record per line),
// with variables persisted under their stable "table[index]" names.
func (r *Repository) Save(w io.Writer) error {
	return r.inner.SaveJSON(w, r.db.udb.Registry().Name)
}

// LoadProbeRepository reads records written by Repository.Save and merges
// them into the database's shared repository. Records naming tuples that
// no longer exist are kept as metadata-only Learner training data.
func (db *DB) LoadProbeRepository(rd io.Reader) (*Repository, error) {
	db.freeze()
	loaded, err := resolve.LoadJSON(rd, func(name string) (boolexpr.Var, bool) {
		return db.udb.Registry().Lookup(name)
	})
	if err != nil {
		return nil, err
	}
	repo := db.ProbeRepository()
	for _, rec := range loaded.Records() {
		if rec.HasVar {
			repo.inner.AddVar(rec.Var, rec.Meta, rec.Answer)
		} else {
			repo.inner.Add(rec.Meta, rec.Answer)
		}
	}
	return repo, nil
}

// WithRepository runs the session against a shared probes repository:
// already-known answers are substituted before any oracle call, and every
// new answer is recorded for future sessions. Combine with the
// database's ProbeRepository (or LoadProbeRepository) handle.
func WithRepository(r *Repository) Option {
	return func(o *options) { o.repo = r }
}

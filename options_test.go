package qres_test

import (
	"errors"
	"testing"

	"qres"
)

// WithParallelism and the deprecated per-dimension wrappers must produce
// identical resolutions: the consolidated option is a pure re-plumbing of
// the same knobs, and bit-identical results for any worker count is part
// of its contract.
func TestWithParallelismEquivalence(t *testing.T) {
	run := func(opts ...qres.Option) *qres.Resolution {
		db := buildPaperDB(t)
		res, err := db.Query(paperSQL)
		if err != nil {
			t.Fatal(err)
		}
		orc := randomOracle(db, 0.5, 33)
		opts = append(opts,
			qres.WithStrategy("general"), qres.WithLearning("offline"),
			qres.WithTrees(10), qres.WithSeed(4))
		out, err := db.Resolve(res, orc, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	base := run()
	cases := map[string][]qres.Option{
		"deprecated wrapper":  {qres.WithForestWorkers(2)},
		"consolidated option": {qres.WithParallelism(qres.Parallelism{Forest: 2})},
		"serial everything":   {qres.WithParallelism(qres.Parallelism{Forest: 1, Rescore: 1, Shards: 1})},
		"wide everything":     {qres.WithParallelism(qres.Parallelism{Forest: 4, Rescore: 4, Shards: 8})},
	}
	for name, opts := range cases {
		out := run(opts...)
		if out.Probes != base.Probes {
			t.Errorf("%s: %d probes, want %d", name, out.Probes, base.Probes)
		}
		for i := range base.ProbedTuples {
			if out.ProbedTuples[i] != base.ProbedTuples[i] {
				t.Fatalf("%s: probe %d = %v, want %v", name, i, out.ProbedTuples[i], base.ProbedTuples[i])
			}
		}
	}
}

// The exported sentinel errors must surface through errors.Is at the
// public API boundary — they are the documented error contract.
func TestSentinelErrors(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	orc := randomOracle(db, 0.5, 21)
	sess, err := db.NewSession(res, orc, qres.WithStrategy("general"), qres.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sess.Resolution(); !errors.Is(err, qres.ErrSessionNotDone) {
		t.Errorf("Resolution before done: %v, want ErrSessionNotDone", err)
	}

	// An unknown tuple in an option must wrap ErrUnknownVariable.
	db2 := buildPaperDB(t)
	res2, _ := db2.Query(paperSQL)
	_, err = db2.Resolve(res2, randomOracle(db2, 0.5, 21),
		qres.WithKnownAnswer(qres.TupleRef{Table: "NoSuchTable", Index: 0}, true))
	if !errors.Is(err, qres.ErrUnknownVariable) {
		t.Errorf("unknown tuple ref: %v, want ErrUnknownVariable", err)
	}

	// Submitting with no probe outstanding: ErrNoProbePending.
	if _, err := sess.SubmitAnswer(qres.TupleRef{Table: "Roles", Index: 0}, true); !errors.Is(err, qres.ErrNoProbePending) {
		t.Errorf("submit with no probe outstanding: %v, want ErrNoProbePending", err)
	}

	// Submitting for a tuple other than the outstanding probe: ErrProbeMismatch.
	probe, done, err := sess.NextProbe()
	if err != nil || done {
		t.Fatalf("NextProbe: done=%t err=%v", done, err)
	}
	other := qres.TupleRef{Table: "Roles", Index: 0}
	if probe.Ref == other {
		other.Index = 1
	}
	if _, err := sess.SubmitAnswer(other, true); !errors.Is(err, qres.ErrProbeMismatch) {
		t.Errorf("submit for wrong tuple: %v, want ErrProbeMismatch", err)
	}
	if _, err := sess.SubmitAnswer(probe.Ref, true); err != nil {
		t.Fatal(err)
	}

	for !sess.Done() {
		if _, _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Submitting after resolution completes: ErrSessionDone.
	if _, err := sess.SubmitAnswer(probe.Ref, true); !errors.Is(err, qres.ErrSessionDone) {
		t.Errorf("submit after done: %v, want ErrSessionDone", err)
	}
	if _, err := sess.Resolution(); err != nil {
		t.Errorf("Resolution after done: %v", err)
	}
	if sess.Components() < 1 {
		t.Errorf("Components() = %d, want >= 1", sess.Components())
	}
	if sig := sess.ComponentSignature(); len(sig) != 16 {
		t.Errorf("ComponentSignature() = %q, want 16 hex chars", sig)
	}
}

package qres_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"qres"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// normalizeTrace strips the non-deterministic fields (wall-clock time and
// span duration) from every JSONL trace line, keeping stage, session,
// round and attrs — the deterministic skeleton of the trace.
func normalizeTrace(t *testing.T, raw []byte) string {
	t.Helper()
	var out strings.Builder
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("trace line is not valid JSON: %v\n%s", err, line)
		}
		delete(rec, "t")
		delete(rec, "us")
		norm, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(norm)
		out.WriteByte('\n')
	}
	return out.String()
}

// A deterministic session (fixed seed, EP probabilities, single
// goroutine) must produce a byte-identical trace skeleton run over run —
// the golden file pins both the event sequence and the wire format.
func TestWithTraceGoldenFile(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = db.Resolve(res, randomOracle(db, 0.5, 17),
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(1),
		qres.WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeTrace(t, buf.Bytes())

	golden := filepath.Join("testdata", "trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestWithTraceGoldenFile -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("trace skeleton diverged from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// memObserver is a concurrency-safe Observer collecting events.
type memObserver struct {
	mu     sync.Mutex
	events []qres.TraceEvent
}

func (m *memObserver) Observe(ev qres.TraceEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, ev)
}

func (m *memObserver) count(stage string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ev := range m.events {
		if ev.Stage == stage {
			n++
		}
	}
	return n
}

// WithObserver must deliver one probe span per oracle verification, plus
// the setup and per-round component spans, with populated fields.
func TestWithObserver(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	mem := &memObserver{}
	r, err := db.Resolve(res, randomOracle(db, 0.5, 4),
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(9),
		qres.WithObserver(mem))
	if err != nil {
		t.Fatal(err)
	}
	if r.Probes == 0 {
		t.Fatal("resolution issued no probes")
	}
	for _, stage := range []string{"repo_reuse", "split", "learner", "utility", "selector", "probe", "simplify"} {
		if mem.count(stage) == 0 {
			t.Errorf("observer saw no %q spans", stage)
		}
	}
	if got := mem.count("probe"); got != r.Probes {
		t.Errorf("observer saw %d probe spans, want %d", got, r.Probes)
	}
	mem.mu.Lock()
	defer mem.mu.Unlock()
	for _, ev := range mem.events {
		if ev.Stage == "" || ev.Time.IsZero() {
			t.Fatalf("event missing stage or time: %+v", ev)
		}
		if ev.Stage == "probe" {
			if _, ok := ev.Attrs["answer"]; !ok {
				t.Errorf("probe span lacks answer attr: %+v", ev)
			}
		}
	}
}

// Session.Metrics must expose per-stage timing distributions whose counts
// match the probe count, without any observer attached.
func TestSessionMetrics(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := db.NewSession(res, randomOracle(db, 0.5, 17),
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	// Safe before any probing: present but empty.
	if m := sess.Metrics(); m.StageTiming("probe").Count != 0 {
		t.Fatal("probe timing non-zero before the first Step")
	}
	r, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := sess.Metrics()
	for _, stage := range []string{"learner", "utility", "selector", "probe", "simplify"} {
		ts := m.StageTiming(stage)
		if ts.Count != int64(r.Probes) {
			t.Errorf("stage %s: count %d, want %d", stage, ts.Count, r.Probes)
		}
		if ts.Count > 0 && (ts.Total <= 0 || ts.Max < ts.Min || ts.Mean <= 0) {
			t.Errorf("stage %s: implausible summary %+v", stage, ts)
		}
	}
	if len(m.Counters) == 0 {
		t.Error("metrics snapshot has no counters")
	}
	found := false
	for k, v := range m.Counters {
		if strings.HasPrefix(k, "events_total{probe,") {
			found = true
			if v != int64(r.Probes) {
				t.Errorf("%s = %d, want %d", k, v, r.Probes)
			}
		}
	}
	if !found {
		t.Error("no events_total{probe,...} counter in snapshot")
	}
}

// Step on a finished session — or any step issuing no oracle call — must
// return the zero TupleRef, never a stale reference to an earlier probe.
func TestStepAfterDoneReturnsZeroRef(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := db.NewSession(res, randomOracle(db, 0.5, 17),
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for !sess.Done() {
		if _, _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if sess.Probes() == 0 {
		t.Fatal("session finished without probing; test needs a probing run")
	}
	ref, done, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("finished session must report done")
	}
	if ref != (qres.TupleRef{}) {
		t.Errorf("Step after done returned stale ref %v, want zero", ref)
	}
}

package qres

import (
	"io"
	"strings"
	"time"

	"qres/internal/obs"
)

// TraceEvent is one completed span of the resolution pipeline as exposed
// to public observers: a pipeline stage (e.g. "learner", "probe",
// "simplify"), when it started, how long it took, and stage-specific
// annotations.
type TraceEvent struct {
	// Time is the span's start time.
	Time time.Time
	// Stage names the pipeline stage (see the Observability section of the
	// README for the taxonomy).
	Stage string
	// Session labels the emitting configuration (e.g. "General+LAL").
	Session string
	// Round is the probe-selection round, or -1 for events outside the
	// probing loop (setup, training).
	Round int
	// Duration is the span duration.
	Duration time.Duration
	// Attrs carries stage-specific annotations (candidate counts, oracle
	// answers, plan shapes, ...).
	Attrs map[string]any
}

// Observer receives every span event of a resolution run. Implementations
// must be safe for concurrent use: ResolveParallel emits from multiple
// goroutines.
type Observer interface {
	Observe(TraceEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(TraceEvent)

// Observe implements Observer.
func (f ObserverFunc) Observe(ev TraceEvent) { f(ev) }

// observerSink bridges the internal span stream to a public Observer.
type observerSink struct{ o Observer }

func (s observerSink) Emit(ev obs.Event) {
	out := TraceEvent{
		Time:     ev.Time,
		Stage:    string(ev.Stage),
		Session:  ev.Session,
		Round:    ev.Round,
		Duration: ev.Dur,
	}
	if len(ev.Attrs) > 0 {
		out.Attrs = make(map[string]any, len(ev.Attrs))
		for _, a := range ev.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	s.o.Observe(out)
}

// WithObserver streams every pipeline span event of the run to o. Multiple
// observers (and WithTrace writers) may be combined; each receives every
// event.
func WithObserver(o Observer) Option {
	return func(opts *options) {
		if o != nil {
			opts.sinks = append(opts.sinks, observerSink{o: o})
		}
	}
}

// WithTrace writes every pipeline span event to w as JSON Lines, one
// object per span:
//
//	{"t":"2023-06-01T12:00:00.000000001Z","stage":"probe","session":"General+LAL","round":3,"us":152,"attrs":{"var":7,"answer":true}}
//
// Writes are serialized internally, so w need not be safe for concurrent
// use, but the caller remains responsible for closing it after the run.
func WithTrace(w io.Writer) Option {
	return func(opts *options) {
		if w != nil {
			opts.sinks = append(opts.sinks, obs.NewJSONL(w))
		}
	}
}

// TimingSummary describes the duration distribution of one pipeline stage
// over a run.
type TimingSummary struct {
	// Count is the number of spans observed.
	Count int64
	// Total is the summed duration across spans.
	Total time.Duration
	// Mean, Min, Max, P50 and P90 summarize the per-span durations. The
	// percentiles are computed over a bounded reservoir and are exact for
	// runs of up to a few thousand spans per stage.
	Mean, Min, Max, P50, P90 time.Duration
}

// MetricsSnapshot is a point-in-time copy of a session's metrics.
type MetricsSnapshot struct {
	// Counters holds monotonic event counts keyed by metric name and
	// labels, e.g. "events_total{probe,General+LAL}".
	Counters map[string]int64
	// Gauges holds last-set values, e.g. "undecided_exprs{General+LAL}".
	Gauges map[string]float64
	// Timings holds per-stage duration distributions keyed by stage name
	// ("learner", "lal", "utility", "selector", "probe", ...).
	Timings map[string]TimingSummary
}

// StageTiming returns the duration distribution of one pipeline stage
// (zero TimingSummary when the stage never ran).
func (m *MetricsSnapshot) StageTiming(stage string) TimingSummary {
	return m.Timings[stage]
}

// snapshotMetrics converts an internal registry snapshot to the public
// form. Histograms of the per-stage "stage_seconds" metric are re-keyed by
// their stage label; any other histogram keeps its full key.
func snapshotMetrics(reg *obs.Registry) *MetricsSnapshot {
	out := &MetricsSnapshot{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]float64),
		Timings:  make(map[string]TimingSummary),
	}
	if reg == nil {
		return out
	}
	snap := reg.Snapshot()
	for k, v := range snap.Counters {
		out.Counters[k] = v
	}
	for k, v := range snap.Gauges {
		out.Gauges[k] = v
	}
	for k, h := range snap.Histograms {
		name := k
		if rest, ok := strings.CutPrefix(k, "stage_seconds{"); ok {
			if stage, _, found := strings.Cut(rest, ","); found {
				name = stage
			} else {
				name = strings.TrimSuffix(rest, "}")
			}
		}
		sum := TimingSummary{
			Count: h.Count,
			Total: secondsToDuration(h.Sum),
			Mean:  secondsToDuration(h.Mean),
			P50:   secondsToDuration(h.P50),
			P90:   secondsToDuration(h.P90),
		}
		if h.Count > 0 {
			sum.Min = secondsToDuration(h.Min)
			sum.Max = secondsToDuration(h.Max)
		}
		// Parallel sub-sessions share a configuration name and therefore a
		// stage key; their histograms are already merged in the registry.
		out.Timings[name] = sum
	}
	return out
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Metrics returns a point-in-time snapshot of the session's pipeline
// metrics: per-stage timing distributions (the paper's Table 4 components:
// learner, lal, utility, selector, plus probe latency and setup stages)
// and the raw counters and gauges behind them. Safe to call at any point
// of the session, including before the first Step.
func (s *Session) Metrics() *MetricsSnapshot { return snapshotMetrics(s.reg) }

// Package qres is a query-guided uncertainty-resolution engine for
// relational data, implementing the framework of "Query-Guided Resolution
// in Uncertain Databases" (Drien, Freiman, Amarilli, Amsterdamer, SIGMOD
// 2023).
//
// The workflow mirrors the paper's architecture:
//
//  1. Build an uncertain database: every inserted tuple may be incorrect,
//     and carries metadata (source, category, content attributes) that
//     correlates with its correctness.
//  2. Run an SPJU SQL query (select/project/join/union). The engine tracks
//     Boolean provenance: each output row is annotated with a monotone DNF
//     expression over tuple-correctness variables.
//  3. Resolve: given an Oracle that can verify individual tuples (a domain
//     expert, a crowd, a trusted source), qres iteratively selects the
//     cheapest sequence of verifications — combining learned answer
//     probabilities, Boolean-evaluation utility functions and active
//     learning — until the exact set of correct query answers is known.
//
// A minimal end-to-end use:
//
//	db := qres.New()
//	db.MustCreateTable("facts",
//		qres.Column{Name: "subject", Kind: qres.String},
//		qres.Column{Name: "object", Kind: qres.String})
//	db.MustInsert("facts", []any{"volkswagen", "audi"},
//		map[string]string{"source": "web-01.example.com"})
//	res, _ := db.Query(`SELECT DISTINCT subject FROM facts`)
//	out, _ := db.Resolve(res, oracle, qres.WithStrategy("general"))
//	for _, row := range out.CorrectRows { ... }
package qres

import (
	"errors"
	"fmt"
	"time"

	"qres/internal/table"
	"qres/internal/uncertain"
)

// Kind is the type of a column.
type Kind uint8

// Column kinds.
const (
	Int Kind = iota
	Float
	String
	DateKind
)

func (k Kind) internal() table.Kind {
	switch k {
	case Int:
		return table.KindInt
	case Float:
		return table.KindFloat
	case DateKind:
		return table.KindDate
	default:
		return table.KindString
	}
}

// Column declares one attribute of a table.
type Column struct {
	Name string
	Kind Kind
}

// Date is a calendar-date literal for Insert values.
type Date struct {
	Year, Month, Day int
}

// TupleRef identifies one inserted tuple: the table name and the 0-based
// insertion index within it. Oracles receive TupleRefs and answer whether
// the referenced tuple is correct.
type TupleRef struct {
	Table string
	Index int
}

// String renders the reference as "table[index]".
func (r TupleRef) String() string { return fmt.Sprintf("%s[%d]", r.Table, r.Index) }

// DB is an uncertain database under construction and, after the first
// query, a frozen queryable instance. A DB is not safe for concurrent
// mutation; freeze it (by querying) before sharing.
type DB struct {
	data   *table.Database
	udb    *uncertain.DB
	frozen bool

	// sharedRepo is the database's shared Known Probes Repository handle
	// (see ProbeRepository / WithRepository), created lazily.
	sharedRepo *Repository
}

// New returns an empty uncertain database.
func New() *DB {
	return &DB{data: table.NewDatabase()}
}

// CreateTable declares a table. All tables must be created (and rows
// inserted) before the first Query.
func (db *DB) CreateTable(name string, cols ...Column) error {
	if db.frozen {
		return errors.New("qres: database is frozen (a query has run); create tables first")
	}
	if len(cols) == 0 {
		return fmt.Errorf("qres: table %q needs at least one column", name)
	}
	tcols := make([]table.Column, len(cols))
	for i, c := range cols {
		tcols[i] = table.Column{Name: c.Name, Kind: c.Kind.internal()}
	}
	return db.data.Add(table.NewRelation(name, table.NewSchema(tcols...)))
}

// MustCreateTable is CreateTable panicking on error, for static setup.
func (db *DB) MustCreateTable(name string, cols ...Column) {
	if err := db.CreateTable(name, cols...); err != nil {
		panic(err)
	}
}

// Insert appends one row. Values map positionally onto the table's
// columns; supported Go types are int, int64, float64, string, Date,
// time.Time (stored as a date) and nil (NULL). meta is the tuple's
// metadata — the attributes the resolution Learner trains on (e.g.
// "source", "category"); it may be nil. Insert returns the new tuple's
// reference.
func (db *DB) Insert(tableName string, values []any, meta map[string]string) (TupleRef, error) {
	if db.frozen {
		return TupleRef{}, errors.New("qres: database is frozen (a query has run)")
	}
	rel, ok := db.data.Relation(tableName)
	if !ok {
		return TupleRef{}, fmt.Errorf("qres: unknown table %q", tableName)
	}
	tup := make(table.Tuple, len(values))
	for i, v := range values {
		tv, err := toValue(v)
		if err != nil {
			return TupleRef{}, fmt.Errorf("qres: column %d: %w", i, err)
		}
		tup[i] = tv
	}
	var m table.Metadata
	if meta != nil {
		m = table.Metadata(meta).Clone()
	}
	idx, err := rel.Append(tup, m)
	if err != nil {
		return TupleRef{}, err
	}
	return TupleRef{Table: tableName, Index: idx}, nil
}

// MustInsert is Insert panicking on error.
func (db *DB) MustInsert(tableName string, values []any, meta map[string]string) TupleRef {
	ref, err := db.Insert(tableName, values, meta)
	if err != nil {
		panic(err)
	}
	return ref
}

// toValue converts a Go value to a storage value.
func toValue(v any) (table.Value, error) {
	switch x := v.(type) {
	case nil:
		return table.Null(), nil
	case int:
		return table.Int(int64(x)), nil
	case int64:
		return table.Int(x), nil
	case float64:
		return table.Float(x), nil
	case string:
		return table.String_(x), nil
	case Date:
		return table.Date(x.Year, x.Month, x.Day), nil
	case time.Time:
		return table.Date(x.Year(), int(x.Month()), x.Day()), nil
	default:
		return table.Value{}, fmt.Errorf("unsupported value type %T", v)
	}
}

// freeze annotates every tuple with its correctness variable. Called
// implicitly by the first Query.
func (db *DB) freeze() {
	if !db.frozen {
		db.udb = uncertain.New(db.data)
		db.frozen = true
	}
}

// NumTuples returns the number of inserted tuples across all tables.
func (db *DB) NumTuples() int { return db.data.TotalTuples() }

// Tables returns the table names in creation order.
func (db *DB) Tables() []string { return db.data.Names() }

// Tuple returns the rendered values and the metadata of a tuple.
func (db *DB) Tuple(ref TupleRef) (values []string, meta map[string]string, ok bool) {
	rel, found := db.data.Relation(ref.Table)
	if !found || ref.Index < 0 || ref.Index >= rel.Len() {
		return nil, nil, false
	}
	tup := rel.At(ref.Index)
	values = make([]string, len(tup))
	for i, v := range tup {
		values[i] = v.String()
	}
	meta = map[string]string(rel.MetaAt(ref.Index).Clone())
	return values, meta, true
}

package qres_test

import (
	"testing"

	"qres"
)

func TestCostOptions(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	orc := randomOracle(db, 0.5, 23)

	// Education verifications are 10x as expensive.
	var costOpts []qres.Option
	expensive := map[qres.TupleRef]bool{}
	for i := 0; i < res.Len(); i++ {
		for _, ref := range res.Tuples(i) {
			if ref.Table == "education" && !expensive[ref] {
				expensive[ref] = true
				costOpts = append(costOpts, qres.WithCost(ref, 10))
			}
		}
	}
	base := []qres.Option{
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(4),
	}

	// Without cost options, Cost == Probes.
	plain, err := db.Resolve(res, orc, base...)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cost != float64(plain.Probes) {
		t.Errorf("Cost = %f, Probes = %d", plain.Cost, plain.Probes)
	}

	// Accounting: with costs assigned, Cost equals the probe-log sum.
	db2 := buildPaperDB(t)
	res2, _ := db2.Query(paperSQL)
	orc2 := randomOracle(db2, 0.5, 23)
	blind, err := db2.Resolve(res2, orc2, append(append([]qres.Option{}, base...), costOpts...)...)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, ref := range blind.ProbedTuples {
		if ref.Table == "education" {
			want += 10
		} else {
			want++
		}
	}
	if blind.Cost != want {
		t.Errorf("Cost = %f, recomputed %f", blind.Cost, want)
	}

	// Cost-aware selection defers expensive tuples: the fraction of
	// education probes must not increase.
	db3 := buildPaperDB(t)
	res3, _ := db3.Query(paperSQL)
	orc3 := randomOracle(db3, 0.5, 23)
	awareOpts := append(append([]qres.Option{qres.WithCostAware()}, base...), costOpts...)
	aware, err := db3.Resolve(res3, orc3, awareOpts...)
	if err != nil {
		t.Fatal(err)
	}
	frac := func(r *qres.Resolution) float64 {
		if len(r.ProbedTuples) == 0 {
			return 0
		}
		n := 0
		for _, ref := range r.ProbedTuples {
			if ref.Table == "education" {
				n++
			}
		}
		return float64(n) / float64(len(r.ProbedTuples))
	}
	if frac(aware) > frac(blind) {
		t.Errorf("cost-aware probed more expensive tuples (%.2f) than blind (%.2f)",
			frac(aware), frac(blind))
	}
	// Answers stay exact either way.
	for i := 0; i < res.Len(); i++ {
		if aware.IsCorrect(i) != blind.IsCorrect(i) {
			t.Errorf("row %d: cost-aware disagrees", i)
		}
	}

	// Unknown tuple in WithCost errors.
	if _, err := db.Resolve(res, orc, qres.WithCost(qres.TupleRef{Table: "zzz"}, 5)); err == nil {
		t.Error("unknown tuple cost accepted")
	}
}
